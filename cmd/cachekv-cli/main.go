// Command cachekv-cli is a small interactive shell over the public API, for
// poking at a CacheKV instance by hand: puts, gets, deletes, range scans,
// simulated crashes, and hardware counters.
//
//	$ cachekv-cli
//	cachekv> put greeting hello
//	OK
//	cachekv> get greeting
//	hello
//	cachekv> crash
//	power failure simulated; store recovered
//	cachekv> get greeting
//	hello
//
// The non-interactive stats subcommand runs a small smoke workload and dumps
// the full metrics registry:
//
//	$ cachekv-cli stats [-json] [-engine cachekv] [-ops 2000]
//
// The slowops subcommand runs the same smoke workload with slow-op dossier
// capture armed and prints the forensic record of each outlier operation —
// where its time went per layer, its wait/busy split, and the trace events
// (flush, seal, compaction, stall) that overlapped it:
//
//	$ cachekv-cli slowops [-json] [-threshold-ns 20000] [-ops 2000]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cachekv"
	"cachekv/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		os.Exit(statsCmd(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "slowops" {
		os.Exit(slowopsCmd(os.Args[2:]))
	}
	db, err := cachekv.Open(cachekv.Options{PMemMB: 1024})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := db.Session(0)
	fmt.Printf("%s on simulated eADR platform. Type 'help' for commands.\n", db.EngineName())

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("cachekv> ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "help":
			fmt.Println("commands: put <k> <v> | get <k> | del <k> | scan <start> [n] | flush | crash | stats | metrics | trace [n] | slowops | quit")
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			if err := s.Put([]byte(fields[1]), []byte(strings.Join(fields[2:], " "))); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("OK")
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, err := s.Get([]byte(fields[1]))
			if err == cachekv.ErrNotFound {
				fmt.Println("(not found)")
			} else if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println(string(v))
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			if err := s.Delete([]byte(fields[1])); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("OK")
		case "scan":
			if len(fields) < 2 {
				fmt.Println("usage: scan <start> [limit]")
				continue
			}
			limit := 10
			if len(fields) > 2 {
				if n, err := strconv.Atoi(fields[2]); err == nil {
					limit = n
				}
			}
			n, err := s.Scan([]byte(fields[1]), limit, func(k, v []byte) bool {
				fmt.Printf("  %s = %s\n", k, v)
				return true
			})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("(%d entries)\n", n)
		case "flush":
			if err := db.Flush(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("flushed to storage component")
		case "crash":
			db2, err := db.SimulateCrash()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			db = db2
			s = db.Session(0)
			fmt.Println("power failure simulated; store recovered")
		case "stats":
			m := db.Metrics()
			fmt.Printf("write hit ratio: %.1f%%  amplification: %.2fx  media written: %d KiB\n",
				m.WriteHitRatio*100, m.WriteAmplification, m.MediaWriteBytes>>10)
			fmt.Printf("filter probes: %d  negatives: %d  block cache: %d hit / %d miss (%.1f%%)\n",
				m.FilterProbes, m.FilterNegatives,
				m.BlockCacheHits, m.BlockCacheMisses, m.BlockCacheHitRatio*100)
			fmt.Printf("session virtual time: %.3f ms\n", float64(s.VirtualNanos())/1e6)
		case "metrics":
			db.Registry().Gather().WriteText(os.Stdout)
		case "trace":
			tr := db.Trace()
			if tr == nil {
				fmt.Println("observability disabled")
				continue
			}
			n := 10
			if len(fields) > 1 {
				if v, err := strconv.Atoi(fields[1]); err == nil {
					n = v
				}
			}
			evs := tr.Events()
			if len(evs) > n {
				evs = evs[len(evs)-n:]
			}
			for _, ev := range evs {
				b, _ := json.Marshal(ev)
				fmt.Println(string(b))
			}
		case "slowops":
			ds := db.SlowOps()
			if len(ds) == 0 {
				fmt.Println("(no slow ops captured)")
				continue
			}
			for _, d := range ds {
				printDossier(d)
			}
		case "quit", "exit":
			db.Close()
			return
		default:
			fmt.Printf("unknown command %q (try 'help')\n", fields[0])
		}
	}
	db.Close()
}

// statsCmd runs a deterministic smoke workload against a fresh store and
// dumps the metrics registry, as aligned text or (with -json) the sorted JSON
// snapshot the golden tests pin.
func statsCmd(args []string) int {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	engine := fs.String("engine", "cachekv", "engine to exercise")
	ops := fs.Int("ops", 2000, "smoke workload size")
	workers := fs.Int("compaction-workers", 0, "background compaction workers (0 = legacy inline compaction)")
	asJSON := fs.Bool("json", false, "emit the snapshot as JSON (sorted by name)")
	fs.Parse(args)

	db, err := cachekv.Open(cachekv.Options{PMemMB: 1024, Engine: cachekv.Engine(*engine), CompactionWorkers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer db.Close()
	s := db.Session(0)
	var key [16]byte
	val := []byte(strings.Repeat("v", 64))
	for i := 0; i < *ops; i++ {
		copy(key[:], fmt.Sprintf("key%013d", i%(*ops/2+1)))
		if i%4 == 3 {
			if _, err := s.Get(key[:]); err != nil && err != cachekv.ErrNotFound {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		} else if err := s.Put(key[:], val); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if err := db.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	snap := db.Registry().Gather()
	if *asJSON {
		b, err := snap.MarshalSorted()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(b))
		return 0
	}
	snap.WriteText(os.Stdout)
	return 0
}

// slowopsCmd runs the smoke workload with dossier capture armed and prints
// every captured slow op: threshold crossing, per-layer time, wait/busy split,
// flow-control state, and the trace events that overlapped its window.
func slowopsCmd(args []string) int {
	fs := flag.NewFlagSet("slowops", flag.ExitOnError)
	engine := fs.String("engine", "cachekv", "engine to exercise")
	ops := fs.Int("ops", 2000, "smoke workload size")
	thresholdNs := fs.Int64("threshold-ns", 0, "static capture threshold in virtual ns (0 = adaptive p99*8)")
	workers := fs.Int("compaction-workers", 0, "background compaction workers (0 = legacy inline compaction)")
	asJSON := fs.Bool("json", false, "emit dossiers as JSONL instead of text")
	fs.Parse(args)

	db, err := cachekv.Open(cachekv.Options{
		PMemMB:            1024,
		Engine:            cachekv.Engine(*engine),
		CompactionWorkers: *workers,
		SlowOpThreshold:   *thresholdNs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer db.Close()
	s := db.Session(0)
	var key [16]byte
	val := []byte(strings.Repeat("v", 64))
	for i := 0; i < *ops; i++ {
		copy(key[:], fmt.Sprintf("key%013d", i%(*ops/2+1)))
		if i%4 == 3 {
			if _, err := s.Get(key[:]); err != nil && err != cachekv.ErrNotFound {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		} else if err := s.Put(key[:], val); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if err := db.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	ds := db.SlowOps()
	if bad := obs.VerifySlowOps(ds); len(bad) > 0 {
		for _, v := range bad {
			fmt.Fprintf(os.Stderr, "slowop verify: %s\n", v)
		}
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range ds {
			if err := enc.Encode(d); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}
	if len(ds) == 0 {
		fmt.Println("no slow ops captured (try a lower -threshold-ns)")
		return 0
	}
	fmt.Printf("%d slow op(s) captured:\n", len(ds))
	for _, d := range ds {
		printDossier(d)
	}
	return 0
}

// printDossier renders one dossier for humans.
func printDossier(d obs.Dossier) {
	mode := "static"
	if d.Adaptive {
		mode = "adaptive"
	}
	fmt.Printf("#%d %-6s on %s (core %d): %d ns  [threshold %d ns, %s]\n",
		d.Seq, d.Op, d.Thread, d.Core, d.TotalNs, d.ThresholdNs, mode)
	fmt.Printf("   window v[%d..%d]  wait %d ns / busy %d ns", d.StartVNs, d.EndVNs, d.WaitNs, d.BusyNs)
	if d.FlowState != "" {
		fmt.Printf("  flow=%s", d.FlowState)
	}
	fmt.Println()
	for _, l := range d.Layers {
		fmt.Printf("   %-10s %10d ns\n", l.Layer, l.Ns)
	}
	for _, ev := range d.Events {
		b, _ := json.Marshal(ev.Attrs)
		fmt.Printf("   event @%-12d %-16s %s\n", ev.VNs, ev.Type, b)
	}
	if d.EventsTruncated {
		fmt.Println("   (event window truncated)")
	}
}
