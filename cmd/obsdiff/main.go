// Command obsdiff is the perf-regression gate: it structurally diffs two
// cachekv.obs/v1 reports (or any BENCH_*.json with embedded run reports),
// prints a human-readable delta table — throughput, per-op mean and tail
// latency, per-layer attribution, flow-control stall dwell — and exits
// non-zero when any metric regressed beyond its tolerance.
//
// Usage:
//
//	obsdiff [flags] OLD.json NEW.json
//
//	-tol 0.15        default relative tolerance (latency/throughput)
//	-tol-tail 0.25   p99 / p99.9 tolerance
//	-tol-layer 0.35  per-(op, layer) ns/op tolerance
//	-tol-dwell 0.15  stall dwell fraction tolerance
//	-verify          also check both reports' internal invariants
//	-json            emit the delta list as JSON instead of a table
//
// Runs pair up by engine/workload; runs present on only one side are listed
// but never fail the gate (a new benchmark must not block its own PR). A
// metric missing on either side — e.g. p99.9 in a report predating the field
// — is skipped for the same reason.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cachekv/internal/obs"
)

func main() {
	tol := flag.Float64("tol", 0.15, "default relative tolerance (mean ns/op up, Kops/s down)")
	tolTail := flag.Float64("tol-tail", 0.25, "tolerance for p99/p99.9 latency")
	tolLayer := flag.Float64("tol-layer", 0.35, "tolerance for per-(op, layer) ns/op")
	tolDwell := flag.Float64("tol-dwell", 0.15, "tolerance for flow-control stall dwell fraction")
	verify := flag.Bool("verify", false, "also verify both reports' internal invariants")
	asJSON := flag.Bool("json", false, "emit deltas as JSON")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: obsdiff [flags] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRuns := load(flag.Arg(0), *verify)
	newRuns := load(flag.Arg(1), *verify)

	res := obs.DiffRuns(oldRuns, newRuns, obs.DiffTolerances{
		NsPerOp:    *tol,
		Throughput: *tol,
		Tail:       *tolTail,
		Layer:      *tolLayer,
		Dwell:      *tolDwell,
	})
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("obsdiff %s -> %s\n\n", flag.Arg(0), flag.Arg(1))
		res.WriteTable(os.Stdout)
	}
	if len(res.Regressions()) > 0 {
		os.Exit(1)
	}
}

// load reads path and extracts its run reports, exiting on failure.
func load(path string, verify bool) []obs.RunReport {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	runs, shape, err := obs.ExtractRuns(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsdiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "obsdiff: %s: %d run(s) [%s]\n", path, len(runs), shape)
	if verify {
		bad := 0
		for i := range runs {
			for _, v := range runs[i].Verify() {
				fmt.Fprintf(os.Stderr, "obsdiff: %s: run %d (%s/%s): %s\n",
					path, i, runs[i].Engine, runs[i].Workload, v)
				bad++
			}
		}
		if bad > 0 {
			os.Exit(2)
		}
	}
	return runs
}
