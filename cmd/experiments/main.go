// Command experiments regenerates the paper's evaluation figures (Figures 4,
// 5, 10-16) on the simulated platform. Each figure prints as an aligned text
// table with the same rows/series the paper plots.
//
// Usage:
//
//	experiments -fig all              # every figure at the default scale
//	experiments -fig 10 -ops 1000000  # one figure at a custom op count
//	experiments -list                 # list available figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachekv/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4,5,10,11,12,13,14,15,16, wa, recovery, or 'all'")
	ops := flag.Int64("ops", 0, "ops per measured phase (default 200000; paper used 10M)")
	ycsbOps := flag.Int64("ycsb-ops", 0, "ops per YCSB phase (default 100000; paper used 5M)")
	outPath := flag.String("o", "", "also append results to this file")
	list := flag.Bool("list", false, "list available figures and exit")
	flag.Parse()

	var out *os.File
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	if *list {
		fmt.Println("4   Ob1: XPBuffer write hit ratio of the baselines")
		fmt.Println("5   Ob2: baseline thread scaling + NoveLSM-cache latency breakdown")
		fmt.Println("10  Exp#1: sequential/random write throughput, all systems")
		fmt.Println("11  Exp#2: sequential/random read throughput, all systems")
		fmt.Println("12  Exp#3: multi-thread random read/write throughput")
		fmt.Println("13  Exp#4: YCSB Load/A/B/C/D/F")
		fmt.Println("14  Exp#5: CacheKV vs background flush threads")
		fmt.Println("15  Exp#6: CacheKV vs sub-MemTable size")
		fmt.Println("16  Exp#7: CacheKV vs pool size")
		fmt.Println("wa        extension: PMem write amplification of every system")
		fmt.Println("recovery  extension: CacheKV crash-recovery time")
		return
	}

	scale := bench.Scale{Ops: *ops, YCSBOps: *ycsbOps}
	wanted := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		wanted[strings.TrimSpace(f)] = true
	}
	all := wanted["all"]

	emit := func(tables ...*bench.Table) {
		for _, t := range tables {
			fmt.Println(t)
			if out != nil {
				fmt.Fprintln(out, t)
			}
		}
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}

	if all || wanted["4"] {
		t, err := bench.Fig4(scale)
		if err != nil {
			fail("fig4", err)
		}
		emit(t)
	}
	if all || wanted["5"] {
		a, b, err := bench.Fig5(scale)
		if err != nil {
			fail("fig5", err)
		}
		emit(a, b)
	}
	if all || wanted["10"] {
		a, b, err := bench.Fig10(scale)
		if err != nil {
			fail("fig10", err)
		}
		emit(a, b)
	}
	if all || wanted["11"] {
		a, b, err := bench.Fig11(scale)
		if err != nil {
			fail("fig11", err)
		}
		emit(a, b)
	}
	if all || wanted["12"] {
		a, b, err := bench.Fig12(scale)
		if err != nil {
			fail("fig12", err)
		}
		emit(a, b)
	}
	if all || wanted["13"] {
		t, err := bench.Fig13(scale)
		if err != nil {
			fail("fig13", err)
		}
		emit(t)
	}
	if all || wanted["14"] {
		t, err := bench.Fig14(scale)
		if err != nil {
			fail("fig14", err)
		}
		emit(t)
	}
	if all || wanted["15"] {
		t, err := bench.Fig15(scale)
		if err != nil {
			fail("fig15", err)
		}
		emit(t)
	}
	if all || wanted["16"] {
		t, err := bench.Fig16(scale)
		if err != nil {
			fail("fig16", err)
		}
		emit(t)
	}
	if all || wanted["wa"] {
		t, err := bench.WriteAmp(scale)
		if err != nil {
			fail("writeamp", err)
		}
		emit(t)
	}
	if all || wanted["recovery"] {
		t, err := bench.Recovery(scale)
		if err != nil {
			fail("recovery", err)
		}
		emit(t)
	}
}
