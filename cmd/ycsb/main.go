// Command ycsb runs the YCSB core workloads (Load, A, B, C, D, F — the set
// of the paper's Exp#4) against any engine on the simulated platform.
//
// Usage:
//
//	ycsb -engine cachekv -workloads load,a,b,c,d,f -records 1000000 -ops 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachekv/internal/bench"
)

func main() {
	engine := flag.String("engine", "cachekv", "engine name (see cachekv-bench -h)")
	workloads := flag.String("workloads", "load,a,b,c,d,f", "comma-separated YCSB workloads")
	records := flag.Int64("records", 100000, "records loaded before each workload")
	ops := flag.Int64("ops", 100000, "operations per workload")
	threads := flag.Int("threads", 1, "user threads")
	valueSize := flag.Int("value-size", 64, "value size (paper uses 64 B)")
	flag.Parse()

	kind, ok := map[string]bench.EngineKind{
		"cachekv":           bench.CacheKV,
		"pcsm":              bench.PCSM,
		"pcsm+liu":          bench.PCSMLIU,
		"novelsm":           bench.NoveLSM,
		"novelsm-w/o-flush": bench.NoveLSMWoFlush,
		"novelsm-cache":     bench.NoveLSMCache,
		"slm-db":            bench.SLMDB,
		"slm-db-w/o-flush":  bench.SLMDBWoFlush,
		"slm-db-cache":      bench.SLMDBCache,
	}[strings.ToLower(*engine)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(1)
	}
	specs := map[string]bench.YCSBSpec{
		"load": bench.YCSBLoad, "a": bench.YCSBA, "b": bench.YCSBB,
		"c": bench.YCSBC, "d": bench.YCSBD, "f": bench.YCSBF,
	}

	for _, name := range strings.Split(*workloads, ",") {
		spec, ok := specs[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
			os.Exit(1)
		}
		// Fresh platform per workload, as YCSB runs each against a clean DB.
		cfg := bench.DefaultEngineConfig()
		cfg.DataBytes = uint64(*records*2) * uint64(*valueSize+40)
		m := cfg.NewMachine()
		th := m.NewThread(0)
		db, err := cfg.Open(kind, m, th)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := bench.NewRunner(m, db)
		res, err := bench.RunYCSB(r, spec, *records, *ops, *threads, *valueSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ycsb-%s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		fmt.Printf("YCSB-%-4s [%s] : %10.1f Kops/s  (%d ops, %d threads)\n",
			spec.Name, res.Engine, res.KopsPerSec, res.Ops, res.Threads)
		db.Close(th)
	}
}
