// Command ycsb runs the YCSB core workloads (Load, A, B, C, D, F — the set
// of the paper's Exp#4) against any engine on the simulated platform.
//
// Usage:
//
//	ycsb -engine cachekv -workloads load,a,b,c,d,f -records 1000000 -ops 1000000
//
// With -report the run emits the shared cachekv.obs/v1 telemetry schema
// (per-op-type latency histograms with per-layer virtual-time attribution,
// machine-wide per-layer hardware totals, and the metrics snapshot); -check
// additionally verifies the report's internal invariants and exits nonzero on
// any violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachekv/internal/bench"
	"cachekv/internal/obs"
)

func main() {
	engine := flag.String("engine", "cachekv", "engine name (see cachekv-bench -h)")
	workloads := flag.String("workloads", "load,a,b,c,d,f", "comma-separated YCSB workloads")
	records := flag.Int64("records", 100000, "records loaded before each workload")
	ops := flag.Int64("ops", 100000, "operations per workload")
	threads := flag.Int("threads", 1, "user threads")
	valueSize := flag.Int("value-size", 64, "value size (paper uses 64 B)")
	reportPath := flag.String("report", "", "write a cachekv.obs/v1 JSON report here (enables attribution)")
	check := flag.Bool("check", false, "verify report invariants; exit 1 on violation (implies attribution)")
	shards := flag.Int("shards", 0, "CacheKV engine shards (0 or 1 = classic single engine)")
	compactionWorkers := flag.Int("compaction-workers", 0, "CacheKV background compaction workers (0 = legacy inline compaction)")
	groupCommit := flag.Int64("group-commit", 0, "group-commit window in virtual ns (0 = default 10µs, negative disables coalescing; Shards > 1 only)")
	slowopNs := flag.Int64("slowop-ns", 0, "arm slow-op dossier capture with this static threshold (virtual ns; 0 = off); dossiers land in the report's slow_ops")
	flag.Parse()
	withObs := *reportPath != "" || *check

	kind, ok := map[string]bench.EngineKind{
		"cachekv":           bench.CacheKV,
		"pcsm":              bench.PCSM,
		"pcsm+liu":          bench.PCSMLIU,
		"novelsm":           bench.NoveLSM,
		"novelsm-w/o-flush": bench.NoveLSMWoFlush,
		"novelsm-cache":     bench.NoveLSMCache,
		"slm-db":            bench.SLMDB,
		"slm-db-w/o-flush":  bench.SLMDBWoFlush,
		"slm-db-cache":      bench.SLMDBCache,
	}[strings.ToLower(*engine)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(1)
	}
	specs := map[string]bench.YCSBSpec{
		"load": bench.YCSBLoad, "a": bench.YCSBA, "b": bench.YCSBB,
		"c": bench.YCSBC, "d": bench.YCSBD, "f": bench.YCSBF,
	}

	report := obs.NewReport("ycsb")
	for _, name := range strings.Split(*workloads, ",") {
		spec, ok := specs[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
			os.Exit(1)
		}
		// Fresh platform per workload, as YCSB runs each against a clean DB.
		cfg := bench.DefaultEngineConfig()
		cfg.DataBytes = uint64(*records*2) * uint64(*valueSize+40)
		cfg.Shards = *shards
		cfg.GroupCommitWindow = *groupCommit
		cfg.CompactionWorkers = *compactionWorkers
		if *threads > 24 {
			cfg.Cores = *threads
		}
		var tr *obs.Trace
		if withObs {
			cfg.Obs = true
			tr = obs.NewTrace(obs.DefaultTraceCap)
			cfg.Trace = tr
		}
		m := cfg.NewMachine()
		th := m.NewThread(0)
		db, err := cfg.Open(kind, m, th)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := bench.NewRunner(m, db)
		if withObs {
			r.Col = obs.NewCollector()
			if *slowopNs > 0 {
				r.Col.EnableSlowOps(obs.SlowOpPolicy{StaticNs: *slowopNs}, tr)
			}
		}
		res, err := bench.RunYCSB(r, spec, *records, *ops, *threads, *valueSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ycsb-%s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		fmt.Printf("YCSB-%-4s [%s] : %10.1f Kops/s  (%d ops, %d threads)\n",
			spec.Name, res.Engine, res.KopsPerSec, res.Ops, res.Threads)
		if withObs {
			// Quiesce the XPBuffer so the per-layer media-byte totals are
			// complete before the metrics snapshot is taken.
			if err := r.Settle(th); err != nil {
				fmt.Fprintf(os.Stderr, "ycsb-%s: settle: %v\n", spec.Name, err)
				os.Exit(1)
			}
			run := bench.BuildRunReport(res, r, tr, false)
			printAttribution(run)
			report.Runs = append(report.Runs, run)
		}
		db.Close(th)
	}
	if *reportPath != "" {
		if err := report.WriteFile(*reportPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *check {
		if bad := report.Verify(); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintf(os.Stderr, "ycsb: invariant violated: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("ycsb: report invariants hold (%d runs)\n", len(report.Runs))
	}
}

// printAttribution renders one run's per-op-type layer breakdown.
func printAttribution(run obs.RunReport) {
	for _, st := range run.OpStats {
		fmt.Printf("  %-8s : %8d ops, mean %8.0f ns, p99 %8.0f ns\n",
			st.Op, st.Count, st.Latency.MeanNs, st.Latency.P99Ns)
		for _, l := range st.Layers {
			fmt.Printf("    %-10s %12d ns (%5.1f%%)\n",
				l.Layer, l.Ns, 100*float64(l.Ns)/float64(st.TotalNs))
		}
	}
}
