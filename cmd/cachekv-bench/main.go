// Command cachekv-bench is the repository's db_bench equivalent: it runs the
// classic LevelDB benchmark suites (fillseq, fillrandom, readseq,
// readrandom, deleterandom) against any of the nine engines on the simulated
// eADR platform and reports virtual-time throughput, latency breakdowns, and
// the PMem hardware counters.
//
// Usage:
//
//	cachekv-bench -engine cachekv -benchmarks fillrandom,readrandom -num 1000000 -threads 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cachekv/internal/bench"
	"cachekv/internal/hw"
	"cachekv/internal/hw/sim"
	"cachekv/internal/obs"
)

func main() {
	engine := flag.String("engine", "cachekv", "engine: cachekv, pcsm, pcsm+liu, novelsm[-w/o-flush|-cache], slm-db[-w/o-flush|-cache]")
	benchmarks := flag.String("benchmarks", "fillseq,fillrandom,readrandom", "comma-separated benchmark list")
	num := flag.Int64("num", 200000, "operations per benchmark")
	threads := flag.Int("threads", 1, "user threads")
	valueSize := flag.Int("value-size", 64, "value size in bytes (keys are 16 B)")
	flushThreads := flag.Int("flush-threads", 0, "CacheKV background flush threads (0 = default)")
	poolMB := flag.Int("pool-mb", 0, "CacheKV sub-MemTable pool MiB (0 = default 12)")
	tableKB := flag.Int("table-kb", 0, "CacheKV sub-MemTable size KiB (0 = default 2048)")
	readPathOut := flag.String("readpath-out", "", "run the read-path suite and write machine-readable JSON here (ignores -benchmarks)")
	readPathBase := flag.String("readpath-baseline", "", "prior readpath JSON to embed as the before/after baseline")
	readPathEngines := flag.String("readpath-engines", "cachekv,novelsm,slm-db", "engines measured by the read-path suite")
	obsOut := flag.String("obs-out", "", "write a per-phase cachekv.obs/v1 attribution report here (e.g. BENCH_obs.json)")
	shards := flag.Int("shards", 0, "CacheKV engine shards (0 or 1 = classic single engine)")
	compactionWorkers := flag.Int("compaction-workers", 0, "CacheKV background compaction workers (0 = legacy inline compaction)")
	groupCommit := flag.Int64("group-commit", 0, "group-commit window in virtual ns (0 = default 10µs, negative disables coalescing; Shards > 1 only)")
	groupCommitOps := flag.Int("group-commit-max-ops", 0, "max ops per group commit (0 = default 64)")
	shardOut := flag.String("shard-out", "", "run the shard-scaling suite (YCSB-A/C, 1→32 threads, baseline vs Shards=threads) and write JSON here (ignores -benchmarks)")
	compactOut := flag.String("compact-out", "", "run the serial-vs-parallel compaction suite (sustained YCSB-A, inline baseline vs background scheduler) and write JSON here (ignores -benchmarks)")
	compactWorkers := flag.String("compact-workers", "", "comma-separated CompactionWorkers list for -compact-out (default 0,2,4; 0 = inline baseline)")
	profileOut := flag.String("profile-out", "", "write the virtual-time sampling profile (folded-stack text) here")
	profileStep := flag.Int64("profile-step", hw.DefaultProfileStep, "profiler sampling period in virtual ns")
	profileCheck := flag.Bool("profile-check", false, "verify profiler sample-conservation invariants after the run")
	slowopNs := flag.Int64("slowop-ns", 0, "arm slow-op dossier capture with this static threshold (virtual ns)")
	slowopsOut := flag.String("slowops-out", "", "write captured slow-op dossiers (JSONL) here (requires -slowop-ns)")
	flag.Parse()

	if *compactOut != "" {
		cfg := bench.DefaultCompactBenchConfig()
		numSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "num" {
				numSet = true
			}
		})
		if numSet {
			cfg.Ops = *num
		}
		if *compactWorkers != "" {
			cfg.WorkersList = nil
			for _, s := range strings.Split(*compactWorkers, ",") {
				var w int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &w); err != nil {
					fmt.Fprintf(os.Stderr, "bad -compact-workers entry %q\n", s)
					os.Exit(1)
				}
				cfg.WorkersList = append(cfg.WorkersList, w)
			}
		}
		if err := runCompactCurve(*compactOut, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *shardOut != "" {
		numSet, vsSet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "num":
				numSet = true
			case "value-size":
				vsSet = true
			}
		})
		cfg := bench.DefaultShardCurveConfig()
		if numSet {
			cfg.Records = *num
			cfg.Ops = *num
		}
		if vsSet {
			cfg.ValueSize = *valueSize
		}
		cfg.GroupCommitWindow = *groupCommit
		cfg.GroupCommitMaxOps = *groupCommitOps
		if err := runShardCurve(*shardOut, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *readPathOut != "" {
		if err := runReadPath(*readPathOut, *readPathBase, *readPathEngines, *num, *threads, *valueSize); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	kind, ok := map[string]bench.EngineKind{
		"cachekv":           bench.CacheKV,
		"pcsm":              bench.PCSM,
		"pcsm+liu":          bench.PCSMLIU,
		"novelsm":           bench.NoveLSM,
		"novelsm-w/o-flush": bench.NoveLSMWoFlush,
		"novelsm-cache":     bench.NoveLSMCache,
		"slm-db":            bench.SLMDB,
		"slm-db-w/o-flush":  bench.SLMDBWoFlush,
		"slm-db-cache":      bench.SLMDBCache,
	}[strings.ToLower(*engine)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(1)
	}

	cfg := bench.DefaultEngineConfig()
	cfg.DataBytes = uint64(*num) * uint64(*valueSize+40)
	if *flushThreads > 0 {
		cfg.FlushThreads = *flushThreads
	}
	if *poolMB > 0 {
		cfg.PoolBytes = uint64(*poolMB) << 20
	}
	if *tableKB > 0 {
		cfg.SubMemTableBytes = uint64(*tableKB) << 10
	}
	cfg.Shards = *shards
	cfg.CompactionWorkers = *compactionWorkers
	cfg.GroupCommitWindow = *groupCommit
	cfg.GroupCommitMaxOps = *groupCommitOps
	var tr *obs.Trace
	if *obsOut != "" || *slowopNs > 0 {
		cfg.Obs = true
		tr = obs.NewTrace(obs.DefaultTraceCap)
		cfg.Trace = tr
	}
	if *profileOut != "" || *profileCheck {
		cfg.ProfileStepNs = *profileStep
	}
	m := cfg.NewMachine()
	th := m.NewThread(0)
	db, err := cfg.Open(kind, m, th)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runner := bench.NewRunner(m, db)
	report := obs.NewReport("cachekv-bench")
	var prevTally sim.TallySnapshot
	var prevSnap *obs.Snapshot
	if *obsOut != "" {
		prevTally = m.ObsTally().Snapshot()
		prevSnap = bench.BuildRegistry(m, db, tr).Gather()
	}

	fmt.Printf("engine:     %s\n", db.Name())
	fmt.Printf("keys:       16 bytes each\n")
	fmt.Printf("values:     %d bytes each\n", *valueSize)
	fmt.Printf("entries:    %d\n", *num)
	fmt.Printf("threads:    %d\n", *threads)
	fmt.Println(strings.Repeat("-", 52))

	needCol := *obsOut != "" || *slowopNs > 0
	var allDossiers []obs.Dossier
	for _, name := range strings.Split(*benchmarks, ",") {
		name = strings.TrimSpace(name)
		if needCol {
			runner.Col = obs.NewCollector() // fresh per phase: per-phase op stats
			if *slowopNs > 0 {
				runner.Col.EnableSlowOps(obs.SlowOpPolicy{StaticNs: *slowopNs}, tr)
			}
		}
		var res bench.Result
		var err error
		if name == "ingest" {
			// Bulk-load through the atomic SST ingest path, 128 entries/batch.
			batches := int(*num) / 128
			if batches < 1 {
				batches = 1
			}
			res, err = runner.RunIngest(th, batches, 128, *valueSize)
		} else {
			w, ok := makeWorkload(name, *num, *threads, *valueSize)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
				os.Exit(1)
			}
			res, err = runner.Run(w)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if needCol {
			allDossiers = append(allDossiers, runner.Col.SlowOps()...)
		}
		if *obsOut != "" {
			run := bench.BuildRunReport(res, runner, tr, false)
			// Per-phase windows: layer totals and counter metrics become
			// deltas over this phase rather than cumulative machine totals.
			tallyNow := m.ObsTally().Snapshot()
			run.Layers = obs.LayersFromTally(tallyNow.Sub(prevTally))
			snapNow := run.Metrics
			run.Metrics = snapNow.Sub(prevSnap)
			prevTally, prevSnap = tallyNow, snapNow
			report.Runs = append(report.Runs, run)
		}
		micros := float64(res.ElapsedNs) / 1000 / float64(res.Ops) * float64(res.Threads)
		fmt.Printf("%-12s : %8.3f micros/op; %10.1f Kops/s; p50 %.0fns p99 %.0fns",
			name, micros, res.KopsPerSec, res.Latency.Percentile(50), res.Latency.Percentile(99))
		if res.NotFound > 0 {
			fmt.Printf(" (%d of %d not found)", res.NotFound, res.Ops)
		}
		fmt.Println()
	}

	if err := runner.Settle(th); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	snap := m.PMem.Snapshot()
	fmt.Println(strings.Repeat("-", 52))
	fmt.Printf("XPBuffer write hit ratio : %.1f%%\n", snap.WriteHitRatio()*100)
	fmt.Printf("write amplification      : %.2fx\n", snap.WriteAmplification())
	fmt.Printf("media written            : %d MiB\n", snap.MediaWriteB>>20)
	if *obsOut != "" {
		if err := report.WriteFile(*obsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("attribution report       : %s (%d phases)\n", *obsOut, len(report.Runs))
	}
	if *slowopNs > 0 {
		fmt.Printf("slow-op dossiers         : %d captured (threshold %d ns)\n", len(allDossiers), *slowopNs)
		if bad := obs.VerifySlowOps(allDossiers); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintf(os.Stderr, "slowop verify: %s\n", v)
			}
			os.Exit(1)
		}
		if *slowopsOut != "" {
			f, err := os.Create(*slowopsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			for _, d := range allDossiers {
				if err := enc.Encode(d); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if err := db.Close(th); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *profileCheck {
		if bad := obs.VerifyProfiles(m); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintf(os.Stderr, "profile verify: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("profile verify           : ok")
	}
	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		entries := obs.Profiles(m)
		if err := obs.WriteFolded(f, entries); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("profile (folded stacks)  : %s (%d rows)\n", *profileOut, len(entries))
	}
}

// runReadPath executes the read-path acceleration suite (uniform + zipfian
// YCSB-C over a loaded store) and writes BENCH_readpath.json-style output.
func runReadPath(out, baselinePath, engines string, num int64, threads, valueSize int) error {
	var kinds []bench.EngineKind
	byName := map[string]bench.EngineKind{
		"cachekv":           bench.CacheKV,
		"pcsm":              bench.PCSM,
		"pcsm+liu":          bench.PCSMLIU,
		"novelsm":           bench.NoveLSM,
		"novelsm-w/o-flush": bench.NoveLSMWoFlush,
		"novelsm-cache":     bench.NoveLSMCache,
		"slm-db":            bench.SLMDB,
		"slm-db-w/o-flush":  bench.SLMDBWoFlush,
		"slm-db-cache":      bench.SLMDBCache,
	}
	for _, name := range strings.Split(engines, ",") {
		kind, ok := byName[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return fmt.Errorf("unknown engine %q", name)
		}
		kinds = append(kinds, kind)
	}
	cfg := bench.DefaultReadPathConfig()
	if num > 0 {
		cfg.Records, cfg.Ops = num, num
	}
	if threads > 0 {
		cfg.Threads = threads
	}
	if valueSize > 0 {
		cfg.ValueSize = valueSize
	}
	report, err := bench.RunReadPath(kinds, cfg)
	if err != nil {
		return err
	}
	if baselinePath != "" {
		base, err := bench.LoadReadPathReport(baselinePath)
		if err != nil {
			return fmt.Errorf("loading baseline: %w", err)
		}
		report.AttachBaseline(base)
	}
	for _, r := range report.Results {
		fmt.Printf("%-10s %-14s : %10.1f virtual ns/op  (%5.1f%% filter-neg, %5.1f%% cache-hit)\n",
			r.Engine, r.Workload, r.VirtualNsPerOp,
			pct(r.FilterNegatives, r.FilterProbes), r.BlockCacheHitRatio*100)
		if imp, ok := report.ImprovementPct[r.Engine+"/"+r.Workload]; ok {
			fmt.Printf("%-10s %-14s : %+.1f%% vs baseline\n", r.Engine, r.Workload, imp)
		}
	}
	return report.WriteJSON(out)
}

// runShardCurve executes the shard-scaling suite (BENCH_shard.json): YCSB-A
// and YCSB-C at each thread count, 1-shard baseline vs Shards=threads.
func runShardCurve(out string, cfg bench.ShardCurveConfig) error {
	report, err := bench.RunShardCurve(cfg)
	if err != nil {
		return err
	}
	for _, p := range report.Points {
		tag := "baseline"
		if p.Shards > 1 {
			tag = fmt.Sprintf("%d shards", p.Shards)
		}
		fmt.Printf("%-7s t=%-3d %-9s : %10.1f Kops/s", p.Workload, p.Threads, tag, p.KopsPerSec)
		if p.Shards > 1 {
			fmt.Printf("  (%.2fx vs baseline, avg group %.1f ops)", p.SpeedupVsBaseline, p.AvgGroupSize)
		}
		if len(p.VerifyViolations) > 0 {
			fmt.Printf("  OBS-VIOLATIONS: %v", p.VerifyViolations)
		}
		fmt.Println()
	}
	fmt.Printf("YCSB-A speedup at 8 shards: %.2fx\n", report.YCSBASpeedupAt8)
	return report.WriteJSON(out)
}

// runCompactCurve executes the serial-vs-parallel compaction suite
// (BENCH_compact.json): a sustained YCSB-A mix with write shaping armed, once
// with inline compaction and once per scheduler worker count.
func runCompactCurve(out string, cfg bench.CompactBenchConfig) error {
	report, err := bench.RunCompactBench(cfg)
	if err != nil {
		return err
	}
	for _, p := range report.Points {
		tag := "inline"
		if p.Workers > 0 {
			tag = fmt.Sprintf("%d workers", p.Workers)
		}
		fmt.Printf("YCSB-A %-9s : %8.1f Kops/s  dwell slow=%.1fms stop=%.1fms  maxL0=%d  jobs=%d  amp=%.2f",
			tag, p.KopsPerSec,
			float64(p.DwellSlowdownNs)/1e6, float64(p.DwellStopNs)/1e6,
			p.MaxL0Files, p.SchedJobs, p.CompactAmp)
		if len(p.VerifyViolations) > 0 {
			fmt.Printf("  OBS-VIOLATIONS: %v", p.VerifyViolations)
		}
		fmt.Println()
	}
	fmt.Printf("stall-dwell reduction vs inline baseline: %.2fx\n", report.StallReduction)
	return report.WriteJSON(out)
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}

func makeWorkload(name string, num int64, threads, valueSize int) (bench.Workload, bool) {
	w := bench.Workload{
		Name:      name,
		ValueSize: valueSize,
		Ops:       num,
		Threads:   threads,
		Seed:      7,
	}
	switch name {
	case "fillseq":
		w.Keys, w.Mix = bench.SequentialKeys{}, bench.WriteOnly
	case "fillrandom":
		w.Keys, w.Mix = bench.UniformKeys{N: num}, bench.WriteOnly
	case "readseq":
		w.Keys, w.Mix = bench.SequentialKeys{}, bench.ReadOnly
	case "readrandom":
		w.Keys, w.Mix = bench.UniformKeys{N: num}, bench.ReadOnly
	case "readzipf":
		w.Keys, w.Mix = bench.NewZipfian(num), bench.ReadOnly
	case "readwrite":
		w.Keys, w.Mix = bench.UniformKeys{N: num}, bench.Mix{PutFrac: 0.5}
	case "rangedel":
		// Write-heavy mix thinned by narrow range tombstones.
		w.Keys, w.Mix = bench.UniformKeys{N: num}, bench.Mix{PutFrac: 0.6, DeleteRangeFrac: 0.1}
	default:
		return w, false
	}
	return w, true
}
