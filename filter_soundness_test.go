package cachekv

// Filter-soundness tests: the memory-component negative filters may produce
// false positives (wasted probes) but never false negatives (lost keys). A
// filtered engine is run differentially against a filter-disabled engine and
// a plain-map model over randomized workloads, with a simulated power failure
// mid-way — recovery must rebuild the volatile filters before serving reads.

import (
	"fmt"
	"testing"

	"cachekv/internal/hw/sim"
)

func openPair(t *testing.T) (filtered, unfiltered *DB) {
	t.Helper()
	filtered, err := Open(Options{Engine: EngineCacheKV, PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	unfiltered, err = Open(Options{
		Engine:           EngineCacheKV,
		PMemMB:           1024,
		FilterBitsPerKey: -1, // baseline: filters disabled
		BlockCacheMB:     -1, // and no block cache either
	})
	if err != nil {
		t.Fatal(err)
	}
	return filtered, unfiltered
}

// TestFilterSoundnessDifferential drives the same randomized workload into a
// filtered and an unfiltered engine in rounds, crashing both mid-way, and
// requires byte-identical Get results for every key ever touched plus a set
// of never-written keys. Any divergence is a filter false negative (or a
// cache corruption).
func TestFilterSoundnessDifferential(t *testing.T) {
	filtered, unfiltered := openPair(t)
	model := map[string]string{}
	rng := sim.NewRNG(2024)

	const rounds = 4
	const opsPerRound = 3000
	for round := 0; round < rounds; round++ {
		ops := genOps(opsPerRound, uint64(1000+round))
		applyToModel(model, ops)
		applyToEngine(t, filtered, ops)
		applyToEngine(t, unfiltered, ops)

		// Mid-way: power failure on both engines. The filters are DRAM-only,
		// so recovery must rebuild them from the persistent regions.
		if round == rounds/2-1 {
			var err error
			if filtered, err = filtered.SimulateCrash(); err != nil {
				t.Fatal(err)
			}
			if unfiltered, err = unfiltered.SimulateCrash(); err != nil {
				t.Fatal(err)
			}
		}

		sf := filtered.Session(1)
		su := unfiltered.Session(1)
		// Every key in the 500-key space: present ones must match the model
		// on both engines; absent ones must be not-found on both. A filter
		// false negative would surface here as a missing key on the filtered
		// engine only.
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key%04d", i)
			gf, errF := sf.Get([]byte(k))
			gu, errU := su.Get([]byte(k))
			want, inModel := model[k]
			if inModel {
				if errF != nil {
					t.Fatalf("round %d: filtered engine lost %s: %v", round, k, errF)
				}
				if errU != nil {
					t.Fatalf("round %d: unfiltered engine lost %s: %v", round, k, errU)
				}
				if string(gf) != want || string(gu) != want {
					t.Fatalf("round %d: Get(%s) filtered=%q unfiltered=%q want %q",
						round, k, gf, gu, want)
				}
			} else {
				if errF != ErrNotFound || errU != ErrNotFound {
					t.Fatalf("round %d: Get(%s) absent key: filtered=%v unfiltered=%v",
						round, k, errF, errU)
				}
			}
		}
		// Never-written keys exercise the negative path hard.
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("ghost%08d", rng.Intn(1<<30))
			if _, err := sf.Get([]byte(k)); err != ErrNotFound {
				t.Fatalf("round %d: ghost key %s: %v", round, k, err)
			}
		}
	}

	// The filtered engine must actually have used its filters.
	m := filtered.Metrics()
	if m.FilterProbes == 0 {
		t.Fatal("filtered engine reported zero filter probes")
	}
	if m.FilterNegatives == 0 {
		t.Fatal("filtered engine reported zero filter negatives")
	}
	if m.FilterNegatives > m.FilterProbes {
		t.Fatalf("negatives %d exceed probes %d", m.FilterNegatives, m.FilterProbes)
	}
	// And the unfiltered baseline must not have.
	if mu := unfiltered.Metrics(); mu.FilterProbes != 0 {
		t.Fatalf("filter-disabled engine reported %d probes", mu.FilterProbes)
	}
	filtered.Close()
	unfiltered.Close()
}

// TestFilterRebuildAfterCrash writes, crashes immediately (no flush), and
// checks that recovery serves every key — the recovered imm tables carry
// freshly rebuilt filters, so a stale/empty filter would lose keys here.
func TestFilterRebuildAfterCrash(t *testing.T) {
	db, err := Open(Options{Engine: EngineCacheKV, PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session(0)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("crash%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session(0)
	for i := 0; i < n; i++ {
		got, err := s2.Get([]byte(fmt.Sprintf("crash%05d", i)))
		if err != nil {
			t.Fatalf("key crash%05d lost across crash: %v", i, err)
		}
		if want := fmt.Sprintf("v%d", i); string(got) != want {
			t.Fatalf("crash%05d = %q, want %q", i, got, want)
		}
	}
	// Negative probes still sound after the rebuild.
	for i := 0; i < 500; i++ {
		if _, err := s2.Get([]byte(fmt.Sprintf("never%05d", i))); err != ErrNotFound {
			t.Fatalf("never%05d: %v", i, err)
		}
	}
}

// TestValidateOptions covers the Open-time validation of negative knobs.
func TestValidateOptions(t *testing.T) {
	bad := []Options{
		{PoolMB: -1},
		{SubMemTableKB: -4},
		{FlushThreads: -2},
		{SyncThreshold: -64},
		{ImmZoneMB: -32},
		{FSMB: -256},
		{TableSizeKB: -8},
		{L0Trigger: -4},
		{BaseLevelMB: -10},
		{PMemMB: -4096},
		{Cores: -24},
	}
	for _, o := range bad {
		if _, err := Open(o); err == nil {
			t.Fatalf("Open(%+v) accepted a negative knob", o)
		}
	}
	// Negative BlockCacheMB / FilterBitsPerKey are the documented "disable"
	// values, not errors.
	db, err := Open(Options{BlockCacheMB: -1, FilterBitsPerKey: -1})
	if err != nil {
		t.Fatalf("disable values rejected: %v", err)
	}
	s := db.Session(0)
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if m := db.Metrics(); m.FilterProbes != 0 {
		t.Fatalf("disabled filters still probed %d times", m.FilterProbes)
	}
	db.Close()
}

// TestMetricsExposesReadPathCounters checks the new Metrics fields move.
func TestMetricsExposesReadPathCounters(t *testing.T) {
	db, err := Open(Options{Engine: EngineCacheKV, PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	for i := 0; i < 4000; i++ {
		s.Put([]byte(fmt.Sprintf("m%05d", i)), []byte("value"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		s.Get([]byte(fmt.Sprintf("m%05d", i)))
	}
	m := db.Metrics()
	if m.BlockCacheHits+m.BlockCacheMisses == 0 {
		t.Fatal("block cache saw no traffic after flushed reads")
	}
	if m.BlockCacheHitRatio < 0 || m.BlockCacheHitRatio > 1 {
		t.Fatalf("hit ratio %v out of range", m.BlockCacheHitRatio)
	}
}
