package cachekv_test

import (
	"fmt"
	"log"

	"cachekv"
)

// Example demonstrates the core workflow: open a store on the simulated
// eADR platform, write through a session, survive a power failure, and read
// the data back from the recovered store.
func Example() {
	db, err := cachekv.Open(cachekv.Options{PMemMB: 512})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Session(0)
	if err := s.Put([]byte("answer"), []byte("42")); err != nil {
		log.Fatal(err)
	}

	// Power failure: the persistent CPU caches preserve the committed write.
	recovered, err := db.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()

	v, err := recovered.Session(0).Get([]byte("answer"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer = %s\n", v)
	// Output: answer = 42
}

// ExampleSession_Apply shows an atomic multi-key batch: both writes become
// durable together with a single header CAS.
func ExampleSession_Apply() {
	db, err := cachekv.Open(cachekv.Options{PMemMB: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)

	var b cachekv.Batch
	b.Put([]byte("from"), []byte("-10"))
	b.Put([]byte("to"), []byte("+10"))
	if err := s.Apply(&b); err != nil {
		log.Fatal(err)
	}

	from, _ := s.Get([]byte("from"))
	to, _ := s.Get([]byte("to"))
	fmt.Printf("%s %s\n", from, to)
	// Output: -10 +10
}
