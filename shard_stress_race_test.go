package cachekv

// Race stress for the sharded router: concurrent sessions issuing cross-shard
// atomic batches while scanners, single-key writers, and Flush run against the
// same store, with a simulated power failure between rounds. Run with -race;
// the strong assertion is crash atomicity — after each recovery, every
// writer's last acknowledged batch must be fully present (the default
// platform is eADR, and cross-shard batches are two-phase logged), and no
// batch may ever be half-visible.

import (
	"fmt"
	"sync"
	"testing"

	"cachekv/internal/hw/sim"
)

// batchRecord remembers one acknowledged batch for the post-crash oracle.
type batchRecord struct {
	keys  []string
	value string
}

func TestStressShardedCrossBatches(t *testing.T) {
	const cores = 4
	const shards = 4
	const rounds = 3
	const writers = 4
	const batchesPerWriter = 120

	db, err := Open(Options{Engine: EngineCacheKV, PMemMB: 1024, Cores: cores, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.EngineName(); got != "CacheKV(shards=4)" {
		t.Fatalf("EngineName = %q, want sharded router", got)
	}
	var totalCrossBatches int64

	for round := 0; round < rounds; round++ {
		last := make([]batchRecord, writers)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := db.Session(w)
				rng := sim.NewRNG(uint64(round*1000 + w + 1))
				for i := 0; i < batchesPerWriter; i++ {
					// 4 keys drawn from the writer's own space: with hashed
					// routing almost every batch spans several shards and takes
					// the two-phase path; same-shard batches exercise the
					// single-CAS fast path.
					b := &Batch{}
					val := fmt.Sprintf("w%d-r%d-i%04d", w, round, i)
					keys := make([]string, 4)
					for j := range keys {
						keys[j] = fmt.Sprintf("w%d-k%04d-%d", w, rng.Intn(300), j)
						b.Put([]byte(keys[j]), []byte(val))
					}
					if err := s.Apply(b); err != nil {
						t.Errorf("writer %d Apply: %v", w, err)
						return
					}
					last[w] = batchRecord{keys: keys, value: val}
					if i%16 == 0 {
						if err := s.Delete([]byte(fmt.Sprintf("w%d-k%04d-0", w, rng.Intn(300)))); err != nil {
							t.Errorf("writer %d Delete: %v", w, err)
							return
						}
					}
				}
			}(w)
		}
		// Scanners and point readers share cores with the writers and the
		// shards' group-commit threads.
		for rdr := 0; rdr < 2; rdr++ {
			wg.Add(1)
			go func(rdr int) {
				defer wg.Done()
				s := db.Session(writers + rdr)
				rng := sim.NewRNG(uint64(round*77 + rdr + 9))
				for i := 0; i < 300; i++ {
					if i%3 == 0 {
						prefix := fmt.Sprintf("w%d-", rng.Intn(writers))
						if _, err := s.Scan([]byte(prefix), 50, func(k, v []byte) bool { return true }); err != nil {
							t.Errorf("reader %d Scan: %v", rdr, err)
							return
						}
						continue
					}
					key := fmt.Sprintf("w%d-k%04d-%d", rng.Intn(writers), rng.Intn(300), rng.Intn(4))
					if _, err := s.Get([]byte(key)); err != nil && err != ErrNotFound {
						t.Errorf("reader %d Get: %v", rdr, err)
						return
					}
				}
			}(rdr)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if err := db.Flush(); err != nil {
					t.Errorf("Flush: %v", err)
					return
				}
			}
		}()
		wg.Wait()
		if t.Failed() {
			return
		}

		// Counters live in the engine instance and reset across the crash;
		// sample them before recovery replaces the store.
		for _, m := range db.Registry().Gather().Metrics {
			if m.Name == "cross_shard_batches" {
				totalCrossBatches += m.Int
			}
		}
		db, err = db.SimulateCrash()
		if err != nil {
			t.Fatalf("round %d crash/recover: %v", round, err)
		}

		// Crash-atomicity oracle: each writer's last acknowledged batch was
		// committed (two-phase for cross-shard spans) before the crash, so on
		// the eADR platform every one of its keys must read back the batch's
		// value. A missing or stale key would be a half-applied group.
		s := db.Session(0)
		for w, rec := range last {
			for _, key := range rec.keys {
				v, err := s.Get([]byte(key))
				if err != nil {
					t.Fatalf("round %d: writer %d's last batch lost key %q: %v", round, w, key, err)
				}
				if string(v) != rec.value {
					t.Fatalf("round %d: writer %d's last batch torn: key %q = %q, want %q",
						round, w, key, v, rec.value)
				}
			}
		}
	}

	// The workload must actually have exercised the two-phase path.
	var engineShards int64
	for _, m := range db.Registry().Gather().Metrics {
		if m.Name == "engine_shards" {
			engineShards = m.Int
		}
	}
	if engineShards != shards {
		t.Fatalf("engine_shards metric = %d, want %d", engineShards, shards)
	}
	if totalCrossBatches == 0 {
		t.Fatal("stress run never committed a cross-shard batch")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionPinningSharded pins the public Session(core) contract on a
// sharded store: the session's resolved core is core % Options.Cores, and the
// session core never decides key placement — a key written on one session is
// visible from every other.
func TestSessionPinningSharded(t *testing.T) {
	const cores = 4
	db, err := Open(Options{Engine: EngineCacheKV, PMemMB: 512, Cores: cores, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for c := 0; c < 2*cores; c++ {
		if got := db.Session(c).Core(); got != c%cores {
			t.Fatalf("Session(%d).Core() = %d, want %d", c, got, c%cores)
		}
	}
	for c := 0; c < cores; c++ {
		key := fmt.Sprintf("pin-%d", c)
		if err := db.Session(c).Put([]byte(key), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	other := db.Session(2*cores + 1)
	for c := 0; c < cores; c++ {
		if v, err := other.Get([]byte(fmt.Sprintf("pin-%d", c))); err != nil || string(v) != "v" {
			t.Fatalf("key written on session %d not visible across sessions: %q, %v", c, v, err)
		}
	}
}
