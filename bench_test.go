package cachekv

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (Section IV) at a benchmark-friendly scale, plus ablation
// benches for the design choices DESIGN.md calls out. Each BenchmarkFigNN
// runs the corresponding experiment once per b.N iteration and reports the
// headline metric via b.ReportMetric; run the full-scale versions with
// cmd/experiments instead (these exist so `go test -bench=.` exercises every
// harness path).

import (
	"fmt"
	"strconv"
	"testing"

	"cachekv/internal/bench"
)

// benchScale keeps the per-iteration work small enough for `go test -bench`.
var benchScale = bench.Scale{Ops: 30_000, YCSBOps: 20_000}

func reportKops(b *testing.B, t *bench.Table, row, col int) {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		b.Fatalf("table %q has no cell (%d,%d)", t.Title, row, col)
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		// Percentage cells ("62.5%") report as-is after stripping the sign.
		s := t.Rows[row][col]
		v, err = strconv.ParseFloat(s[:len(s)-1], 64)
		if err != nil {
			b.Fatalf("cell %q not numeric", s)
		}
		b.ReportMetric(v, "hit%")
		return
	}
	b.ReportMetric(v, "Kops/s")
}

// BenchmarkFig04WriteHitRatio regenerates Figure 4 (Ob1): the XPBuffer write
// hit ratio of the six baseline systems.
func BenchmarkFig04WriteHitRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, t, 0, 2) // NoveLSM @ 64 B
	}
}

// BenchmarkFig05Threads regenerates Figure 5 (Ob2): baseline write
// throughput under threads plus the NoveLSM-cache latency breakdown.
func BenchmarkFig05Threads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ta, _, err := bench.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, ta, 2, 4) // NoveLSM-cache @ 8 threads
	}
}

// BenchmarkFig10Write regenerates Figure 10 (Exp#1): single-thread write
// throughput of all nine systems.
func BenchmarkFig10Write(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rnd, err := bench.Fig10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, rnd, 8, 2) // CacheKV random write @ 64 B
	}
}

// BenchmarkFig11Read regenerates Figure 11 (Exp#2): single-thread read
// throughput after a matching fill.
func BenchmarkFig11Read(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rnd, err := bench.Fig11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, rnd, 8, 2) // CacheKV random read @ 64 B
	}
}

// BenchmarkFig12MultiThread regenerates Figure 12 (Exp#3): multi-thread
// random read and write throughput.
func BenchmarkFig12MultiThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, writes, err := bench.Fig12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, writes, 4, 2) // CacheKV write @ 8 threads
	}
}

// BenchmarkFig13YCSB regenerates Figure 13 (Exp#4): the YCSB workloads.
func BenchmarkFig13YCSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig13(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, t, 4, 1) // CacheKV @ YCSB-Load
	}
}

// BenchmarkFig14FlushThreads regenerates Figure 14 (Exp#5): write throughput
// versus background flush threads.
func BenchmarkFig14FlushThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig14(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, t, 0, 4) // 2 user threads, 6 flush threads
	}
}

// BenchmarkFig15TableSize regenerates Figure 15 (Exp#6): throughput versus
// sub-MemTable size. (The harness raises tiny op counts to the experiment's
// minimum, so this is the slowest bench in the suite.)
func BenchmarkFig15TableSize(b *testing.B) {
	if testing.Short() {
		b.Skip("fig15 needs the dataset to dwarf the pool")
	}
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig15(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, t, 2, 2) // 1 MiB tables, fillrandom
	}
}

// BenchmarkFig16PoolSize regenerates Figure 16 (Exp#7): throughput versus
// pool size.
func BenchmarkFig16PoolSize(b *testing.B) {
	if testing.Short() {
		b.Skip("fig16 needs the dataset to dwarf the pool")
	}
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig16(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		reportKops(b, t, 2, 2) // 12 MiB pool, fillrandom
	}
}

// --- Ablation benches (DESIGN.md §5) -------------------------------------

// ablationFill measures CacheKV's random-write throughput under opts.
func ablationFill(b *testing.B, opts Options, ops int) float64 {
	b.Helper()
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	for i := 0; i < ops; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%010d", i*2654435761%ops)), make([]byte, 64)); err != nil {
			b.Fatal(err)
		}
	}
	return float64(ops) / float64(s.VirtualNanos()) * 1e6
}

// BenchmarkAblationCopyFlush contrasts CacheKV (copy-based flush) with the
// eviction-driven write-back a naive eADR store relies on — approximated by
// the NoveLSM-w/o-flush baseline, whose memtable writes leave the cache only
// through LRU eviction.
func BenchmarkAblationCopyFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withCopy := ablationFill(b, Options{PMemMB: 1024}, 30_000)
		db, err := Open(Options{Engine: EngineNoveLSMNoFlush, PMemMB: 1024})
		if err != nil {
			b.Fatal(err)
		}
		s := db.Session(0)
		for j := 0; j < 30_000; j++ {
			s.Put([]byte(fmt.Sprintf("k%010d", j)), make([]byte, 64))
		}
		withoutCopy := float64(30_000) / float64(s.VirtualNanos()) * 1e6
		db.Close()
		b.ReportMetric(withCopy/withoutCopy, "speedup")
	}
}

// BenchmarkAblationSyncThreshold sweeps the lazy-index sync threshold. The
// threshold moves work between the background index thread and the readers
// (trigger 1 makes a read synchronize whatever the background missed), so
// the interesting metric is read throughput interleaved with writes.
func BenchmarkAblationSyncThreshold(b *testing.B) {
	for _, thr := range []int{1, 64, 1 << 20} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db, err := Open(Options{PMemMB: 1024, SyncThreshold: thr})
				if err != nil {
					b.Fatal(err)
				}
				s := db.Session(0)
				const n = 20_000
				var readNs int64
				for j := 0; j < n; j++ {
					s.Put([]byte(fmt.Sprintf("k%010d", j)), make([]byte, 64))
					if j%8 == 0 {
						t0 := s.VirtualNanos()
						s.Get([]byte(fmt.Sprintf("k%010d", j/2)))
						readNs += s.VirtualNanos() - t0
					}
				}
				db.Close()
				b.ReportMetric(float64(readNs)/float64(n/8), "read-ns/op")
			}
		})
	}
}

// BenchmarkAblationIndexPlacement contrasts CacheKV's DRAM sub-skiplists
// (via full CacheKV) with PMem-resident indexes (via NoveLSM, whose PMem
// memtable keeps its skiplist in PMem) on the read path.
func BenchmarkAblationIndexPlacement(b *testing.B) {
	read := func(engine Engine) float64 {
		db, err := Open(Options{Engine: engine, PMemMB: 1024})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		s := db.Session(0)
		const n = 20_000
		for i := 0; i < n; i++ {
			s.Put([]byte(fmt.Sprintf("k%010d", i)), make([]byte, 64))
		}
		base := s.VirtualNanos()
		for i := 0; i < n; i++ {
			s.Get([]byte(fmt.Sprintf("k%010d", i*2654435761%n)))
		}
		return float64(n) / float64(s.VirtualNanos()-base) * 1e6
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(read(EngineCacheKV)/read(EngineNoveLSM), "read-speedup")
	}
}

// BenchmarkAblationElastic contrasts elastic and fixed sub-MemTable sizing
// under a bursty many-core write load.
func BenchmarkAblationElastic(b *testing.B) {
	burst := func(disable bool) float64 {
		db, err := Open(Options{PMemMB: 1024, DisableElastic: disable, PoolMB: 4, SubMemTableKB: 2048})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		done := make(chan int64, 8)
		for w := 0; w < 8; w++ {
			go func(w int) {
				s := db.Session(w)
				for i := 0; i < 5_000; i++ {
					s.Put([]byte(fmt.Sprintf("w%d-%08d", w, i)), make([]byte, 64))
				}
				done <- s.VirtualNanos()
			}(w)
		}
		var max int64
		for w := 0; w < 8; w++ {
			if ns := <-done; ns > max {
				max = ns
			}
		}
		return float64(8*5_000) / float64(max) * 1e6
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(burst(false)/burst(true), "elastic-speedup")
	}
}
