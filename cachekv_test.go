package cachekv

import (
	"fmt"
	"sync"
	"testing"
)

func TestOpenDefaultEngine(t *testing.T) {
	db, err := Open(Options{PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.EngineName() != "CacheKV" {
		t.Fatalf("EngineName = %s", db.EngineName())
	}
	s := db.Session(0)
	if err := s.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := s.Get([]byte("absent")); err != ErrNotFound {
		t.Fatalf("absent = %v", err)
	}
	if s.VirtualNanos() == 0 {
		t.Fatal("operations charged no virtual time")
	}
}

func TestAllEnginesOpen(t *testing.T) {
	engines := []Engine{
		EngineCacheKV, EnginePCSM, EnginePCSMLIU,
		EngineNoveLSM, EngineNoveLSMNoFlush, EngineNoveLSMCache,
		EngineSLMDB, EngineSLMDBNoFlush, EngineSLMDBCache,
	}
	for _, eng := range engines {
		db, err := Open(Options{Engine: eng, PMemMB: 1024})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		s := db.Session(0)
		for i := 0; i < 500; i++ {
			if err := s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
				t.Fatalf("%s Put: %v", eng, err)
			}
		}
		if _, err := s.Get([]byte("k00250")); err != nil {
			t.Fatalf("%s Get: %v", eng, err)
		}
		db.Close()
	}
}

func TestUnknownEngine(t *testing.T) {
	if _, err := Open(Options{Engine: "bogus"}); err == nil {
		t.Fatal("bogus engine accepted")
	}
}

func TestScanAndDelete(t *testing.T) {
	db, err := Open(Options{PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("k050"))
	var keys []string
	n, err := s.Scan([]byte("k048"), 4, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil || n != 4 {
		t.Fatalf("scan = %d, %v", n, err)
	}
	want := []string{"k048", "k049", "k051", "k052"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan keys = %v", keys)
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	db, err := Open(Options{PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session(w)
			for i := 0; i < 2000; i++ {
				if err := s.Put([]byte(fmt.Sprintf("w%d-%05d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := db.Session(0)
	for w := 0; w < 8; w++ {
		if _, err := s.Get([]byte(fmt.Sprintf("w%d-01000", w))); err != nil {
			t.Fatalf("lost w%d: %v", w, err)
		}
	}
}

func TestSimulateCrashEADR(t *testing.T) {
	db, err := Open(Options{PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session(0)
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db2, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session(0)
	for i := 0; i < 1000; i += 37 {
		v, err := s2.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered k%05d = %q, %v", i, v, err)
		}
	}
	// Old handle unusable.
	if _, err := db.SimulateCrash(); err == nil {
		t.Fatal("double crash on stale handle should fail")
	}
}

func TestMetrics(t *testing.T) {
	db, err := Open(Options{PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	for i := 0; i < 5000; i++ {
		s.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 64))
	}
	db.Flush()
	m := db.Metrics()
	if m.MediaWriteBytes == 0 {
		t.Fatal("no media writes recorded")
	}
	if m.WriteHitRatio <= 0 || m.WriteHitRatio > 1 {
		t.Fatalf("write hit ratio = %v", m.WriteHitRatio)
	}
}

func TestCustomKnobs(t *testing.T) {
	db, err := Open(Options{
		PMemMB:        1024,
		PoolMB:        6,
		SubMemTableKB: 512,
		FlushThreads:  2,
		SyncThreshold: 16,
		ImmZoneMB:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	for i := 0; i < 20000; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k010000")); err != nil {
		t.Fatal(err)
	}
}

func TestBatchPublicAPI(t *testing.T) {
	db, err := Open(Options{PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	var b Batch
	b.Put([]byte("acct:alice"), []byte("90"))
	b.Put([]byte("acct:bob"), []byte("110"))
	b.Delete([]byte("acct:carol"))
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get([]byte("acct:alice")); string(v) != "90" {
		t.Fatalf("alice = %q", v)
	}
	if v, _ := s.Get([]byte("acct:bob")); string(v) != "110" {
		t.Fatalf("bob = %q", v)
	}
	// Batches survive crashes atomically.
	db2, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session(0)
	if v, _ := s2.Get([]byte("acct:bob")); string(v) != "110" {
		t.Fatalf("bob after crash = %q", v)
	}
}

func TestBatchUnsupportedEngine(t *testing.T) {
	db, err := Open(Options{Engine: EngineNoveLSM, PMemMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session(0)
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	if err := s.Apply(&b); err == nil {
		t.Fatal("NoveLSM accepted a CacheKV batch")
	}
}
